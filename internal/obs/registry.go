package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// ErrDuplicateName is wrapped by every Try* registration method when a
// metric name is already registered as a different kind (counter vs
// gauge vs histogram vs vec vs SLO) or with a different shape
// (histogram bounds, vec label keys). Re-registering the same name
// with the same kind and shape is NOT an error: it idempotently
// returns the existing instance, so hot-swapped components and tests
// can re-register safely. The panicking registration methods
// (Counter, Histogram, CounterVec, ...) panic with this error's
// message in the conflict cases.
var ErrDuplicateName = errors.New("obs: duplicate metric name")

// Registry holds named metrics and the span-event trace ring. Metric
// registration (Counter/Gauge/Histogram) is get-or-create and takes a
// lock; instrumented code registers once at init and keeps the
// handles, so the hot path never touches the registry itself.
type Registry struct {
	// epoch is the wall-clock instant the registry was created,
	// carrying Go's monotonic reading; epochNano caches its UnixNano.
	// Every span Start in the trace ring is epoch + monotonic delta
	// (see Event), which gives exports a stable base that survives
	// wall-clock steps. The epoch is fixed for the registry's lifetime
	// — Reset clears metrics and spans but never re-anchors time.
	epoch     time.Time
	epochNano int64

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	// kinds maps every registered name to its metric kind, backing the
	// cross-kind duplicate-name check (see ErrDuplicateName).
	kinds         map[string]string
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
	slos          map[string]*SLO
	trace         eventRing
}

// NewRegistry creates an empty registry. Most code uses Default;
// separate registries exist for tests that need isolation.
func NewRegistry() *Registry {
	now := time.Now()
	return &Registry{
		epoch:         now,
		epochNano:     now.UnixNano(),
		counters:      map[string]*Counter{},
		gauges:        map[string]*Gauge{},
		histograms:    map[string]*Histogram{},
		kinds:         map[string]string{},
		counterVecs:   map[string]*CounterVec{},
		gaugeVecs:     map[string]*GaugeVec{},
		histogramVecs: map[string]*HistogramVec{},
		slos:          map[string]*SLO{},
	}
}

// Epoch returns the registry's creation wall time — the stable base
// every span timestamp and trace export is anchored to.
func (r *Registry) Epoch() time.Time { return r.epoch }

// claimLocked records name under kind, failing with ErrDuplicateName
// if the name is already held by a different kind. Callers hold r.mu.
func (r *Registry) claimLocked(name, kind string) error {
	if k, ok := r.kinds[name]; ok && k != kind {
		return fmt.Errorf("%w: %q already registered as %s, requested %s",
			ErrDuplicateName, name, k, kind)
	}
	r.kinds[name] = kind
	return nil
}

// counterLocked is the get-or-create body of TryCounter for callers
// already holding r.mu (vec registration creates the shared
// obs.labels.dropped counter under the registry lock).
func (r *Registry) counterLocked(name string) (*Counter, error) {
	if err := r.claimLocked(name, "counter"); err != nil {
		return nil, err
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c, nil
}

// TryCounter returns the named counter, creating it on first use.
// Re-registering the same name as a counter returns the same instance
// (idempotent); a name held by another metric kind returns an error
// wrapping ErrDuplicateName.
func (r *Registry) TryCounter(name string) (*Counter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name)
}

// Counter returns the named counter, creating it on first use. It
// panics if the name is held by a different metric kind; use
// TryCounter to handle that as an error.
func (r *Registry) Counter(name string) *Counter {
	c, err := r.TryCounter(name)
	if err != nil {
		panic(err)
	}
	return c
}

// TryGauge returns the named gauge, creating it on first use, with
// the same idempotency and ErrDuplicateName contract as TryCounter.
func (r *Registry) TryGauge(name string) (*Gauge, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claimLocked(name, "gauge"); err != nil {
		return nil, err
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g, nil
}

// Gauge returns the named gauge, creating it on first use. It panics
// if the name is held by a different metric kind.
func (r *Registry) Gauge(name string) *Gauge {
	g, err := r.TryGauge(name)
	if err != nil {
		panic(err)
	}
	return g
}

// TryHistogram returns the named histogram, creating it with the
// given bucket bounds on first use. Re-registering an existing name
// with identical bounds returns the existing histogram (idempotent);
// mismatched bounds or a name held by another kind return an error
// wrapping ErrDuplicateName — two call sites silently feeding
// differently-shaped buckets would corrupt the distribution.
func (r *Registry) TryHistogram(name string, bounds []float64) (*Histogram, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claimLocked(name, "histogram"); err != nil {
		return nil, err
	}
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
		return h, nil
	}
	if err := sameBounds(name, h.bounds, bounds); err != nil {
		return nil, err
	}
	return h, nil
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. It panics on a bounds mismatch or a
// cross-kind name conflict; use TryHistogram to handle those as
// errors.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, err := r.TryHistogram(name, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

func sameBounds(name string, have, want []float64) error {
	if len(have) != len(want) {
		return fmt.Errorf("%w: histogram %q re-registered with %d bounds, have %d",
			ErrDuplicateName, name, len(want), len(have))
	}
	for i := range want {
		if have[i] != want[i] {
			return fmt.Errorf("%w: histogram %q re-registered with different bound[%d]",
				ErrDuplicateName, name, i)
		}
	}
	return nil
}

// TryCounterVec returns the named counter vec with the given label
// keys, creating it on first use. Identical re-registration is
// idempotent; mismatched keys or a cross-kind name conflict return an
// error wrapping ErrDuplicateName.
func (r *Registry) TryCounterVec(name string, keys ...string) (*CounterVec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claimLocked(name, "counter_vec"); err != nil {
		return nil, err
	}
	if cv, ok := r.counterVecs[name]; ok {
		if err := sameKeys(name, cv.v.keys, keys); err != nil {
			return nil, err
		}
		return cv, nil
	}
	dropped, err := r.counterLocked(labelsDroppedName)
	if err != nil {
		return nil, err
	}
	cv := &CounterVec{v: newVec(name, keys, dropped, func() *Counter { return &Counter{} })}
	r.counterVecs[name] = cv
	return cv, nil
}

// CounterVec returns the named counter vec, creating it on first use;
// it panics where TryCounterVec returns an error.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	cv, err := r.TryCounterVec(name, keys...)
	if err != nil {
		panic(err)
	}
	return cv
}

// TryGaugeVec returns the named gauge vec with the given label keys,
// creating it on first use, under the TryCounterVec contract.
func (r *Registry) TryGaugeVec(name string, keys ...string) (*GaugeVec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claimLocked(name, "gauge_vec"); err != nil {
		return nil, err
	}
	if gv, ok := r.gaugeVecs[name]; ok {
		if err := sameKeys(name, gv.v.keys, keys); err != nil {
			return nil, err
		}
		return gv, nil
	}
	dropped, err := r.counterLocked(labelsDroppedName)
	if err != nil {
		return nil, err
	}
	gv := &GaugeVec{v: newVec(name, keys, dropped, func() *Gauge { return &Gauge{} })}
	r.gaugeVecs[name] = gv
	return gv, nil
}

// GaugeVec returns the named gauge vec, creating it on first use; it
// panics where TryGaugeVec returns an error.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	gv, err := r.TryGaugeVec(name, keys...)
	if err != nil {
		panic(err)
	}
	return gv
}

// TryHistogramVec returns the named histogram vec (every child shares
// the bucket bounds), creating it on first use. Identical
// re-registration is idempotent; mismatched keys or bounds, or a
// cross-kind name conflict, return an error wrapping
// ErrDuplicateName.
func (r *Registry) TryHistogramVec(name string, bounds []float64, keys ...string) (*HistogramVec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.claimLocked(name, "histogram_vec"); err != nil {
		return nil, err
	}
	if hv, ok := r.histogramVecs[name]; ok {
		if err := sameKeys(name, hv.v.keys, keys); err != nil {
			return nil, err
		}
		if err := sameBounds(name, hv.bounds, bounds); err != nil {
			return nil, err
		}
		return hv, nil
	}
	dropped, err := r.counterLocked(labelsDroppedName)
	if err != nil {
		return nil, err
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	hv := &HistogramVec{
		v:      newVec(name, keys, dropped, func() *Histogram { return newHistogram(b) }),
		bounds: b,
	}
	r.histogramVecs[name] = hv
	return hv, nil
}

// HistogramVec returns the named histogram vec, creating it on first
// use; it panics where TryHistogramVec returns an error.
func (r *Registry) HistogramVec(name string, bounds []float64, keys ...string) *HistogramVec {
	hv, err := r.TryHistogramVec(name, bounds, keys...)
	if err != nil {
		panic(err)
	}
	return hv
}

func sameKeys(name string, have, want []string) error {
	if len(have) != len(want) {
		return fmt.Errorf("%w: vec %q re-registered with %d label keys, have %d",
			ErrDuplicateName, name, len(want), len(have))
	}
	for i := range want {
		if have[i] != want[i] {
			return fmt.Errorf("%w: vec %q re-registered with label key %q at %d, have %q",
				ErrDuplicateName, name, want[i], i, have[i])
		}
	}
	return nil
}

// HistogramSnapshot is the exported state of one histogram. Counts has
// one entry per bound plus a final overflow bucket. P50/P95/P99 are
// bucket-interpolated quantile estimates computed at snapshot time
// (see Quantile); they are estimates bounded by the bucket layout, not
// exact order statistics.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	// Exemplars, when present, holds per-bucket trace IDs of the most
	// recent ObserveExemplar observation — a link from a bucket (e.g.
	// the slow latency tail) into the span ring's trace export.
	// Omitted when no bucket has an exemplar.
	Exemplars []int64 `json:"exemplar_trace_ids,omitempty"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
}

// Mean returns Sum/Count, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// counts by linear interpolation inside the bucket containing the
// target rank — the usual fixed-bucket estimator, so the result is
// bounded by the bucket resolution. The first bucket interpolates
// from 0 when its upper bound is positive (every in-repo layout is
// non-negative); observations in the overflow bucket report the last
// bound. An empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1] // overflow bucket
			}
			hi := h.Bounds[i]
			lo := 0.0
			switch {
			case i > 0:
				lo = h.Bounds[i-1]
			case hi <= 0:
				lo = hi // unknown lower edge: no interpolation
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// SnapshotData is a deterministic point-in-time view of a registry:
// identical registry state always yields an identical snapshot (and
// identical JSON — map keys marshal sorted).
type SnapshotData struct {
	Enabled bool `json:"enabled"`
	// EpochUnixNano is the registry's creation wall time; span Start
	// values are epoch-anchored (see Event), so Start−EpochUnixNano is
	// the span's offset into the run.
	EpochUnixNano int64 `json:"epoch_unix_nano"`
	// Counters, Gauges and Histograms hold both the flat scalar metrics
	// (plain dotted names) and every vec child, flattened under rendered
	// series names of the form name{k1="v1",k2="v2"} (label keys in
	// registration order, values Prometheus-escaped) — so JSON and text
	// consumers see labeled series without a schema change.
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// SLOs holds the windowed burn-rate trackers by name.
	SLOs map[string]SLOSnapshot `json:"slos,omitempty"`
	// Spans lists the retained trace events, oldest first.
	Spans []Event `json:"spans,omitempty"`
	// SpansDropped counts span events that fell off the ring.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// Snapshot returns a read-only view of the registry. Metrics keep
// counting; nothing is cleared (see Reset).
func (r *Registry) Snapshot() SnapshotData { return r.capture(false) }

// Reset atomically clears every counter, gauge, histogram and the
// trace ring, returning the snapshot of the values it cleared. Reset
// is the only operation that zeroes registry state; Snapshot and the
// individual Load accessors never do.
func (r *Registry) Reset() SnapshotData { return r.capture(true) }

func (r *Registry) capture(clear bool) SnapshotData {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := SnapshotData{
		Enabled:       Enabled(),
		EpochUnixNano: r.epochNano,
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		if clear {
			s.Counters[name] = c.Swap()
		} else {
			s.Counters[name] = c.Load()
		}
	}
	for name, g := range r.gauges {
		if clear {
			s.Gauges[name] = g.v.Swap(0)
		} else {
			s.Gauges[name] = g.Load()
		}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot(clear)
	}
	for _, cv := range r.counterVecs {
		cv.capture(s.Counters, clear)
	}
	for _, gv := range r.gaugeVecs {
		gv.capture(s.Gauges, clear)
	}
	for _, hv := range r.histogramVecs {
		hv.capture(s.Histograms, clear)
	}
	if len(r.slos) > 0 {
		s.SLOs = make(map[string]SLOSnapshot, len(r.slos))
		for name, slo := range r.slos {
			s.SLOs[name] = slo.capture(clear)
		}
	}
	s.Spans, s.SpansDropped = r.trace.snapshot(clear)
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the registry snapshot as sorted "name value" lines,
// histograms as "name count=N sum=S mean=M p50=... p95=... p99=...",
// SLO trackers as "slo.<name> ..." summary lines, plus an
// unconditional "obs.spans_dropped N" line surfacing how many span
// events fell off the trace ring.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g",
			name, h.Count, h.Sum, h.Mean(), h.P50, h.P95, h.P99))
	}
	for name, o := range s.SLOs {
		lines = append(lines, fmt.Sprintf("slo.%s objective=%.6g window_good=%d window_bad=%d error_rate=%.6g burn_rate=%.6g",
			name, o.Objective, o.WindowGood, o.WindowBad, o.ErrorRate, o.BurnRate))
	}
	lines = append(lines, fmt.Sprintf("obs.spans_dropped %d", s.SpansDropped))
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
