package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry holds named metrics and the span-event trace ring. Metric
// registration (Counter/Gauge/Histogram) is get-or-create and takes a
// lock; instrumented code registers once at init and keeps the
// handles, so the hot path never touches the registry itself.
type Registry struct {
	// epoch is the wall-clock instant the registry was created,
	// carrying Go's monotonic reading; epochNano caches its UnixNano.
	// Every span Start in the trace ring is epoch + monotonic delta
	// (see Event), which gives exports a stable base that survives
	// wall-clock steps. The epoch is fixed for the registry's lifetime
	// — Reset clears metrics and spans but never re-anchors time.
	epoch     time.Time
	epochNano int64

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	trace      eventRing
}

// NewRegistry creates an empty registry. Most code uses Default;
// separate registries exist for tests that need isolation.
func NewRegistry() *Registry {
	now := time.Now()
	return &Registry{
		epoch:      now,
		epochNano:  now.UnixNano(),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Epoch returns the registry's creation wall time — the stable base
// every span timestamp and trace export is anchored to.
func (r *Registry) Epoch() time.Time { return r.epoch }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Re-registering an existing name returns
// the existing histogram; the bounds must match (same length and
// values) or Histogram panics — two call sites silently feeding
// differently-shaped buckets would corrupt the distribution.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds, have %d",
			name, len(bounds), len(h.bounds)))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bound[%d]", name, i))
		}
	}
	return h
}

// HistogramSnapshot is the exported state of one histogram. Counts has
// one entry per bound plus a final overflow bucket. P50/P95/P99 are
// bucket-interpolated quantile estimates computed at snapshot time
// (see Quantile); they are estimates bounded by the bucket layout, not
// exact order statistics.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Mean returns Sum/Count, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// counts by linear interpolation inside the bucket containing the
// target rank — the usual fixed-bucket estimator, so the result is
// bounded by the bucket resolution. The first bucket interpolates
// from 0 when its upper bound is positive (every in-repo layout is
// non-negative); observations in the overflow bucket report the last
// bound. An empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1] // overflow bucket
			}
			hi := h.Bounds[i]
			lo := 0.0
			switch {
			case i > 0:
				lo = h.Bounds[i-1]
			case hi <= 0:
				lo = hi // unknown lower edge: no interpolation
			}
			return lo + (hi-lo)*(rank-cum)/float64(c)
		}
		cum = next
	}
	return h.Bounds[len(h.Bounds)-1]
}

// SnapshotData is a deterministic point-in-time view of a registry:
// identical registry state always yields an identical snapshot (and
// identical JSON — map keys marshal sorted).
type SnapshotData struct {
	Enabled bool `json:"enabled"`
	// EpochUnixNano is the registry's creation wall time; span Start
	// values are epoch-anchored (see Event), so Start−EpochUnixNano is
	// the span's offset into the run.
	EpochUnixNano int64                        `json:"epoch_unix_nano"`
	Counters      map[string]int64             `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	// Spans lists the retained trace events, oldest first.
	Spans []Event `json:"spans,omitempty"`
	// SpansDropped counts span events that fell off the ring.
	SpansDropped int64 `json:"spans_dropped,omitempty"`
}

// Snapshot returns a read-only view of the registry. Metrics keep
// counting; nothing is cleared (see Reset).
func (r *Registry) Snapshot() SnapshotData { return r.capture(false) }

// Reset atomically clears every counter, gauge, histogram and the
// trace ring, returning the snapshot of the values it cleared. Reset
// is the only operation that zeroes registry state; Snapshot and the
// individual Load accessors never do.
func (r *Registry) Reset() SnapshotData { return r.capture(true) }

func (r *Registry) capture(clear bool) SnapshotData {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := SnapshotData{
		Enabled:       Enabled(),
		EpochUnixNano: r.epochNano,
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]int64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		if clear {
			s.Counters[name] = c.Swap()
		} else {
			s.Counters[name] = c.Load()
		}
	}
	for name, g := range r.gauges {
		if clear {
			s.Gauges[name] = g.v.Swap(0)
		} else {
			s.Gauges[name] = g.Load()
		}
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot(clear)
	}
	s.Spans, s.SpansDropped = r.trace.snapshot(clear)
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the registry snapshot as sorted "name value" lines,
// histograms as "name count=N sum=S mean=M p50=... p95=... p99=...".
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	var lines []string
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%.6g mean=%.6g p50=%.6g p95=%.6g p99=%.6g",
			name, h.Count, h.Sum, h.Mean(), h.P50, h.P95, h.P99))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
