// Chip mapping and cost report: map a CNN onto crossbar tiles and
// estimate silicon area, weight storage, and per-inference energy and
// latency — the architecture-model axis that distinguishes GENIEx's
// functional simulator from pure device-level tools (paper Table 1).
//
// Run with: go run ./examples/chip_report
package main

import (
	"fmt"
	"log"

	"geniex/internal/arch"
	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/models"
)

func main() {
	set := dataset.SynthCIFAR(8, 8, 1)
	net := models.MiniResNet(set, 8, 2)

	for _, tile := range []int{16, 32, 64} {
		cfg := funcsim.DefaultConfig()
		cfg.Xbar.Rows, cfg.Xbar.Cols = tile, tile

		rep, err := arch.MapNetwork(net, cfg, arch.DefaultAreaModel())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %dx%d tiles ===\n%s", tile, tile, rep)

		// Execute a few inferences to collect event counts, then cost
		// them with the energy model.
		eng, err := funcsim.NewEngine(cfg, funcsim.Ideal{})
		if err != nil {
			log.Fatal(err)
		}
		sim, err := funcsim.Lower(net, eng)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sim.Forward(set.TestX); err != nil {
			log.Fatal(err)
		}
		stats := sim.Stats()
		cost := funcsim.DefaultEnergyModel().Estimate(stats, cfg)
		perImage := float64(set.TestX.Rows)
		fmt.Printf("per image: %.2f µJ, %.2f ms, %d crossbar ops\n\n",
			cost.Energy/perImage*1e6, cost.Latency/perImage*1e3,
			stats.CrossbarOps/int64(set.TestX.Rows))
	}
	fmt.Println("larger tiles pack the weights into fewer crossbars (less area) but")
	fmt.Println("suffer more IR drop per array — the design tension of Fig 7(a).")
}
