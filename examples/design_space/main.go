// Design-space exploration: how the non-ideality factor of a crossbar
// varies with array size, ON resistance and conductance ON/OFF ratio —
// the circuit-level analysis of Fig. 2 of the paper.
//
// Run with: go run ./examples/design_space
package main

import (
	"fmt"
	"log"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

// meanNF samples random workloads on a design point and returns the
// average non-ideality factor.
func meanNF(cfg xbar.Config, samples int, seed uint64) float64 {
	rng := linalg.NewRNG(seed)
	xb, err := xbar.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	var n int
	for s := 0; s < samples; s++ {
		g := linalg.NewDense(cfg.Rows, cfg.Cols)
		for i := range g.Data {
			g.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
		}
		v := make([]float64, cfg.Rows)
		for i := range v {
			v[i] = cfg.Vsupply * rng.Float64()
		}
		if err := xb.Program(g); err != nil {
			log.Fatal(err)
		}
		sol, err := xb.Solve(v)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range xbar.NF(xbar.IdealCurrents(v, g), sol.Currents, cfg) {
			sum += f
			n++
		}
	}
	return sum / float64(n)
}

func main() {
	const samples = 20

	fmt.Println("mean NF vs crossbar size (Fig 2b):")
	for _, size := range []int{8, 16, 32} {
		cfg := xbar.DefaultConfig()
		cfg.Rows, cfg.Cols = size, size
		fmt.Printf("  %2dx%-2d  NF = %.4f\n", size, size, meanNF(cfg, samples, 1))
	}

	fmt.Println("mean NF vs ON resistance (Fig 2c):")
	for _, ron := range []float64{50e3, 100e3, 300e3} {
		cfg := xbar.DefaultConfig()
		cfg.Rows, cfg.Cols = 16, 16
		cfg.Ron = ron
		fmt.Printf("  %3.0fkΩ  NF = %.4f\n", ron/1e3, meanNF(cfg, samples, 2))
	}

	fmt.Println("mean NF vs ON/OFF ratio (Fig 2d):")
	for _, ratio := range []float64{2, 6, 10} {
		cfg := xbar.DefaultConfig()
		cfg.Rows, cfg.Cols = 16, 16
		cfg.OnOffRatio = ratio
		fmt.Printf("  %4.0f   NF = %.4f\n", ratio, meanNF(cfg, samples, 3))
	}

	fmt.Println("\ntakeaway: small arrays, high Ron and high ON/OFF ratios minimize non-ideality.")
}
