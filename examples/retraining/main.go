// Hardware-aware retraining: deploy a float-trained CNN onto a harsh
// crossbar design point, observe the accuracy loss, then fine-tune
// with the non-ideal hardware inside the training loop (straight-
// through estimator) and watch the accuracy come back — the mitigation
// workflow the paper's modeling enables.
//
// Run with: go run ./examples/retraining
package main

import (
	"fmt"
	"log"

	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/hwtrain"
	"geniex/internal/linalg"
	"geniex/internal/models"
	"geniex/internal/nn"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

func main() {
	set := dataset.SynthCIFAR(700, 150, 1)

	// A BatchNorm-free CNN (hwtrain requires the training-time and
	// deployment-time hardware views to match; see the package doc).
	r := linalg.NewRNG(2)
	g1 := nn.ConvGeom{InC: set.C, InH: set.H, InW: set.W, OutC: 8, Kernel: 3, Stride: 1, Pad: 1}
	g2 := nn.ConvGeom{InC: 8, InH: set.H / 2, InW: set.W / 2, OutC: 8, Kernel: 3, Stride: 1, Pad: 1}
	net := nn.NewSequential(
		nn.NewConv2D(g1, true, r),
		nn.NewReLU(),
		nn.NewMaxPool2D(8, set.H, set.W, 2),
		nn.NewConv2D(g2, true, r),
		nn.NewReLU(),
		nn.NewGlobalAvgPool2D(8, set.H/2, set.W/2),
		nn.NewLinear(8, set.Classes, true, r),
	)
	fmt.Println("training the float baseline...")
	if err := models.Train(net, set, models.TrainConfig{Epochs: 12, BatchSize: 32, LR: 0.05, Seed: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float accuracy: %.1f%%\n", 100*models.TestAccuracy(net, set, 64))

	// A deliberately harsh design point.
	xcfg, err := xbar.NewConfig(8, 8,
		xbar.WithRon(25e3), xbar.WithOnOffRatio(2), xbar.WithParasitics(500, 100, 25))
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := funcsim.NewConfig(xcfg,
		funcsim.WithFormats(quant.FxP{Bits: 8, Frac: 4}, quant.FxP{Bits: 8, Frac: 4}),
		funcsim.WithStreamBits(2), funcsim.WithSliceBits(2))
	if err != nil {
		log.Fatal(err)
	}
	eng, err := funcsim.NewEngine(cfg, funcsim.Analytical{Cfg: cfg.Xbar})
	if err != nil {
		log.Fatal(err)
	}
	hwAcc := func() float64 {
		sim, err := funcsim.Lower(net, eng)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := models.Accuracy(sim.Forward, set.TestX, set.TestY, 32)
		if err != nil {
			log.Fatal(err)
		}
		return acc
	}
	fmt.Printf("crossbar accuracy before retraining: %.1f%%\n", 100*hwAcc())

	fmt.Println("fine-tuning with the hardware in the loop (3 epochs)...")
	if err := hwtrain.FineTune(net, eng, set, hwtrain.Options{
		Epochs: 3, BatchSize: 32, LR: 0.002, Seed: 5,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crossbar accuracy after retraining:  %.1f%%\n", 100*hwAcc())
}
