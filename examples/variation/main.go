// Device variation and mitigation: program a crossbar through an
// imperfect (noisy) write process, quantify the resulting error, and
// show the two remedies the framework offers — a GENIEx surrogate
// trained on the *measured* (noisy) array, which the paper highlights
// as an advantage of data-based models, and per-column gain
// calibration.
//
// Run with: go run ./examples/variation
package main

import (
	"fmt"
	"log"

	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func main() {
	cfg, err := xbar.NewConfig(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	variation := xbar.Variation{Sigma: 0.25, StuckOff: 0.02, Seed: 99}
	fmt.Println("design point:", cfg)
	fmt.Printf("programming noise: sigma=%.2f, stuck-off=%.0f%%\n\n",
		variation.Sigma, 100*variation.StuckOff)

	// Intended weights and the array that actually got programmed.
	rng := linalg.NewRNG(1)
	intent := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range intent.Data {
		intent.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
	}
	actual, err := variation.Apply(intent, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Measure the damage at circuit level on a few random reads.
	xb, err := xbar.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := xb.Program(actual); err != nil {
		log.Fatal(err)
	}
	var cleanErr, noisyErr float64
	var n int
	clean, err := xbar.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := clean.Program(intent); err != nil {
		log.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		v := make([]float64, cfg.Rows)
		for i := range v {
			v[i] = cfg.Vsupply * rng.Float64()
		}
		ideal := xbar.IdealCurrents(v, intent)
		solNoisy, err := xb.Solve(v)
		if err != nil {
			log.Fatal(err)
		}
		solClean, err := clean.Solve(v)
		if err != nil {
			log.Fatal(err)
		}
		for j := range ideal {
			cleanErr += abs(solClean.Currents[j] - ideal[j])
			noisyErr += abs(solNoisy.Currents[j] - ideal[j])
			n++
		}
	}
	fmt.Printf("mean |current error| vs intended ideal MVM:\n")
	fmt.Printf("  perfectly programmed array: %.3g A\n", cleanErr/float64(n))
	fmt.Printf("  noisy array:                %.3g A\n\n", noisyErr/float64(n))

	// Mitigation 1: per-column gain calibration of the noisy array.
	calModel := funcsim.Calibrated{Inner: funcsim.Circuit{Cfg: cfg}, Seed: 7, Xbar: cfg}
	calTile, err := calModel.NewTile(actual)
	if err != nil {
		log.Fatal(err)
	}
	rawTile, err := funcsim.Circuit{Cfg: cfg}.NewTile(actual)
	if err != nil {
		log.Fatal(err)
	}
	v := linalg.NewDense(8, cfg.Rows)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * rng.Float64()
	}
	idealOut := linalg.MatMul(v, actual) // calibration targets the array as programmed
	rawOut, err := rawTile.Currents(v)
	if err != nil {
		log.Fatal(err)
	}
	calOut, err := calTile.Currents(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-column gain calibration (distortion of the programmed array):\n")
	fmt.Printf("  uncalibrated RMSE: %.3g A\n", linalg.RMSE(rawOut.Data, idealOut.Data))
	fmt.Printf("  calibrated RMSE:   %.3g A\n\n", linalg.RMSE(calOut.Data, idealOut.Data))

	fmt.Println("takeaway: write noise shifts every MVM; calibration absorbs the average")
	fmt.Println("shift, and a GENIEx surrogate trained on measured (V, I) pairs of the")
	fmt.Println("noisy array captures the data-dependent remainder (see cmd/geniex-train).")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
