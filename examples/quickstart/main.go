// Quickstart: the end-to-end GENIEx flow on a small crossbar —
// simulate a non-ideal crossbar at circuit level, train the neural
// surrogate on its transfer characteristics, and use the surrogate to
// predict non-ideal MVM outputs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geniex/internal/core"
	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func main() {
	// 1. Describe the crossbar design point: a 16×16 array with the
	// paper's nominal parasitics and device parameters.
	cfg, err := xbar.NewConfig(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design point:", cfg)

	// 2. Solve one MVM at circuit level (the HSPICE substitute) and
	// compare with the ideal result.
	rng := linalg.NewRNG(42)
	g := linalg.NewDense(cfg.Rows, cfg.Cols)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
	}
	v := make([]float64, cfg.Rows)
	for i := range v {
		v[i] = cfg.Vsupply * rng.Float64()
	}
	xb, err := xbar.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		log.Fatal(err)
	}
	sol, err := xb.Solve(v)
	if err != nil {
		log.Fatal(err)
	}
	ideal := xbar.IdealCurrents(v, g)
	nf := xbar.NF(ideal, sol.Currents, cfg)
	fmt.Printf("circuit solve: %d Newton iterations, %d CG iterations\n",
		sol.NewtonIters, sol.CGIters)
	fmt.Printf("column 0: ideal %.3g A, non-ideal %.3g A (NF %.3f)\n",
		ideal[0], sol.Currents[0], nf[0])

	// 3. Train GENIEx: generate a labelled dataset from the circuit
	// solver, then fit the (N²+N) × P × N surrogate MLP.
	fmt.Println("\ngenerating 300 labelled samples and training GENIEx...")
	ds, err := core.Generate(cfg, core.GenOptions{Samples: 300, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	train, val := ds.Split(0.2, 9)
	model, err := core.NewModel(cfg, 96, 11)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Train(train, core.TrainOptions{Epochs: 120, Seed: 13}); err != nil {
		log.Fatal(err)
	}

	// 4. Compare fidelity against the linear analytical baseline
	// (Fig. 5 of the paper).
	gx := core.Evaluate(model, val)
	ana := core.Evaluate(core.AnalyticalAdapter{Cfg: cfg}, val)
	fmt.Printf("NF RMSE wrt circuit: GENIEx %.4f, analytical %.4f (%.1fx better)\n",
		gx.RMSENF, ana.RMSENF, ana.RMSENF/gx.RMSENF)

	// 5. Predict a fresh MVM with the surrogate.
	pred := model.NonIdealCurrents(v, g)
	fmt.Printf("column 0 predicted by GENIEx: %.3g A (circuit: %.3g A)\n",
		pred[0], sol.Currents[0])
}
