// DNN inference on non-ideal crossbars: train a small residual CNN on
// the synthetic CIFAR stand-in, lower it onto the functional simulator
// (tiling + bit-slicing), and compare classification accuracy under
// the ideal, analytical and GENIEx crossbar models — a miniature of
// the paper's Fig. 7(d).
//
// Run with: go run ./examples/dnn_inference
package main

import (
	"fmt"
	"log"
	"os"

	"geniex/internal/core"
	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/models"
	"geniex/internal/xbar"
)

func main() {
	// 1. Data and float model.
	set := dataset.SynthCIFAR(800, 120, 1)
	net := models.MiniResNet(set, 8, 2)
	fmt.Println("training MiniResNet (8 channels) on", set.Name, "...")
	if err := models.Train(net, set, models.TrainConfig{
		Epochs: 8, BatchSize: 32, LR: 0.05, Seed: 3, Verbose: os.Stderr,
	}); err != nil {
		log.Fatal(err)
	}
	floatAcc := models.TestAccuracy(net, set, 64)
	fmt.Printf("float32 accuracy: %.2f%%\n\n", 100*floatAcc)

	// 2. Architecture: 16×16 tiles, 16-bit operands, 4-bit streams and
	// slices, 14-bit ADC (the paper's Table 3 defaults).
	xcfg, err := xbar.NewConfig(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	simCfg, err := funcsim.NewConfig(xcfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Train the GENIEx surrogate for this design point.
	fmt.Println("training GENIEx surrogate for", simCfg.Xbar.String(), "...")
	ds, err := core.Generate(simCfg.Xbar, core.GenOptions{Samples: 400, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	gx, err := core.NewModel(simCfg.Xbar, 96, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := gx.Train(ds, core.TrainOptions{Epochs: 120, Seed: 9}); err != nil {
		log.Fatal(err)
	}

	// 4. Evaluate the simulation modes through the model registry, in
	// fidelity-ladder order (the paper compares ideal, analytical and
	// GENIEx; the circuit tiers are skipped here to keep the example
	// fast).
	for _, name := range []string{"geniex", "analytical", "ideal"} {
		spec, err := funcsim.ModelByName(name)
		if err != nil {
			log.Fatal(err)
		}
		params := funcsim.ModelParams{Xbar: simCfg.Xbar}
		if spec.NeedsSurrogate {
			params.Surrogate = gx
		}
		model, err := spec.New(params)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := funcsim.NewEngine(simCfg, model)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := funcsim.Lower(net, eng)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := models.Accuracy(sim.Forward, set.TestX, set.TestY, 32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s accuracy: %6.2f%%  (degradation %+.2f%%)\n",
			name, 100*acc, 100*(floatAcc-acc))
	}
	fmt.Println("\nthe analytical model, blind to device non-linearity, overestimates the degradation.")
}
