// Command xbar-sim runs circuit-level crossbar simulations (the
// repository's HSPICE substitute) and reports non-ideality statistics
// for a design point, optionally comparing the full non-linear solve
// with the linear analytical model.
//
// Example:
//
//	xbar-sim -size 32 -ron 100e3 -onoff 6 -vdd 0.25 -samples 50
package main

import (
	"flag"
	"fmt"
	"os"

	"geniex/internal/linalg"
	"geniex/internal/xbar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xbar-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size    = flag.Int("size", 32, "crossbar rows = cols")
		ron     = flag.Float64("ron", 100e3, "ON resistance (ohms)")
		onoff   = flag.Float64("onoff", 6, "conductance ON/OFF ratio")
		rsource = flag.Float64("rsource", 500, "source resistance (ohms)")
		rsink   = flag.Float64("rsink", 100, "sink resistance (ohms)")
		rwire   = flag.Float64("rwire", 2.5, "wire resistance per cell (ohms)")
		vdd     = flag.Float64("vdd", 0.25, "supply voltage (volts)")
		samples = flag.Int("samples", 50, "random (V,G) workloads to solve")
		seed    = flag.Uint64("seed", 1, "random seed")
		linear  = flag.Bool("linear", false, "use linear devices (analytical-style netlist)")
		spice   = flag.String("spice", "", "export one SPICE netlist of the first workload to this file")
		policy  = flag.String("solver-policy", "recover", "non-convergence handling: recover, failfast or besteffort")
	)
	flag.Parse()

	pol, err := xbar.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	opts := []xbar.Option{
		xbar.WithRon(*ron), xbar.WithOnOffRatio(*onoff),
		xbar.WithParasitics(*rsource, *rsink, *rwire),
		xbar.WithVsupply(*vdd), xbar.WithPolicy(pol),
	}
	if *linear {
		opts = append(opts, xbar.WithLinearDevices())
	}
	cfg, err := xbar.NewConfig(*size, *size, opts...)
	if err != nil {
		return err
	}
	fmt.Println("design point:", cfg.String())

	rng := linalg.NewRNG(*seed)
	var nfAll []float64
	var newtonTotal, cgTotal int
	var converged, recovered, luFallbacks, unconverged int
	worstResid := 0.0
	xb, err := xbar.New(cfg)
	if err != nil {
		return err
	}
	for s := 0; s < *samples; s++ {
		g := linalg.NewDense(cfg.Rows, cfg.Cols)
		for i := range g.Data {
			g.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
		}
		v := make([]float64, cfg.Rows)
		for i := range v {
			v[i] = cfg.Vsupply * rng.Float64()
		}
		if s == 0 && *spice != "" {
			f, err := os.Create(*spice)
			if err != nil {
				return err
			}
			if err := xbar.WriteSPICE(f, cfg, g, v); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("SPICE netlist written to", *spice)
		}
		if err := xb.Program(g); err != nil {
			return err
		}
		sol, err := xb.Solve(v)
		if err != nil {
			return err
		}
		nfAll = append(nfAll, xbar.NF(xbar.IdealCurrents(v, g), sol.Currents, cfg)...)
		newtonTotal += sol.NewtonIters
		cgTotal += sol.CGIters
		luFallbacks += sol.LUFallbacks
		if sol.Converged {
			converged++
		} else {
			unconverged++
		}
		if sol.Recovery != "" && sol.Recovery != "best-effort" {
			recovered++
		}
		if sol.Residual > worstResid {
			worstResid = sol.Residual
		}
	}
	fmt.Printf("solved %d workloads (%.1f Newton iters, %.0f CG iters per solve)\n",
		*samples, float64(newtonTotal)/float64(*samples), float64(cgTotal)/float64(*samples))
	fmt.Printf("solver health: %d/%d converged, %d recovered, %d unconverged, %d LU fallbacks, worst KCL residual %.3g\n",
		converged, *samples, recovered, unconverged, luFallbacks, worstResid)
	fmt.Println("non-ideality factor NF =", linalg.Summarize(nfAll).String())
	return nil
}
