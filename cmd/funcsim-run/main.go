// Command funcsim-run trains a CNN on one of the synthetic datasets
// and evaluates it through the functional simulator under a chosen
// analog crossbar model, reporting top-1 accuracy — one point of the
// paper's Figs. 7–9.
//
// Example:
//
//	funcsim-run -dataset cifar -mode geniex -size 16 -streams 4 -slices 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"geniex/internal/core"
	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/models"
	"geniex/internal/obs"
	"geniex/internal/quant"
	"geniex/internal/xbar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "funcsim-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dsName    = flag.String("dataset", "cifar", "dataset: cifar or imagenet")
		mode      = flag.String("mode", "geniex", "analog model: "+strings.Join(funcsim.ModelNames(), ", "))
		size      = flag.Int("size", 16, "crossbar (tile) size")
		vdd       = flag.Float64("vdd", 0.25, "supply voltage (volts)")
		ron       = flag.Float64("ron", 100e3, "ON resistance (ohms)")
		onoff     = flag.Float64("onoff", 6, "conductance ON/OFF ratio")
		bits      = flag.Int("bits", 16, "weight/activation precision")
		streams   = flag.Int("streams", 4, "input stream width (bits)")
		slices    = flag.Int("slices", 4, "weight slice width (bits)")
		adc       = flag.Int("adc", 14, "ADC bits")
		nTrain    = flag.Int("train", 1500, "training images")
		nTest     = flag.Int("test", 200, "test images")
		epochs    = flag.Int("epochs", 10, "CNN training epochs")
		chans     = flag.Int("channels", 8, "CNN width")
		geniexM   = flag.String("geniex-model", "", "load a pretrained GENIEx model (gob) instead of training one")
		calibrate = flag.Bool("calibrate", false, "apply per-column gain calibration to the analog model")
		noise     = flag.Float64("noise", 0, "read-noise sigma as a fraction of full-scale current")
		policy    = flag.String("solver-policy", "recover", "circuit-solver non-convergence handling: recover, failfast or besteffort")
		degraded  = flag.Bool("degraded", false, "circuit mode: continue with zeroed currents for batch items that fail even after recovery")
		seed      = flag.Uint64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "concurrent tile tasks per MVM: 0 = all cores, 1 = serial (results are bit-identical at any setting)")
		batchWork = flag.Int("batch-workers", -1, "circuit modes: concurrent solves inside one tile's batch (-1 = auto: 1 when tile tasks already fan out, else all cores)")

		gxSamples = flag.Int("geniex-samples", 500, "geniex mode: dataset samples for surrogate training")
		gxEpochs  = flag.Int("geniex-epochs", 150, "geniex mode: surrogate training epochs")

		metricsAddr   = flag.String("metrics-addr", "", "serve the obs metrics snapshot over HTTP on this address (e.g. 127.0.0.1:0); empty disables")
		metricsLinger = flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the run finishes")
		withPprof     = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the metrics address")
		probeRate     = flag.Int("probe-rate", 0, "sample 1 in n tile MVMs through the circuit solver to measure live emulator fidelity (0 disables)")
		traceOut      = flag.String("trace-out", "", "write recorded spans as Chrome trace-event JSON to this file after the run")
	)
	flag.Parse()

	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr, *withPprof)
		if err != nil {
			return err
		}
		fmt.Printf("metrics: serving on http://%s/metrics\n", addr)
		if *metricsLinger > 0 {
			defer func() {
				fmt.Printf("metrics: lingering %s before exit\n", *metricsLinger)
				time.Sleep(*metricsLinger)
			}()
		}
	}

	var set *dataset.Set
	switch *dsName {
	case "cifar":
		set = dataset.SynthCIFAR(*nTrain, *nTest, *seed+10)
	case "imagenet":
		set = dataset.SynthImageNet(*nTrain, *nTest, *seed+20)
	default:
		return fmt.Errorf("unknown dataset %q", *dsName)
	}

	pol, err := xbar.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	spec, err := funcsim.ModelByName(*mode)
	if err != nil {
		return err
	}
	// Batch-level concurrency inside circuit tile solves is correct at
	// any setting: pooled circuit batches are bit-identical at any
	// BatchWorkers count, including nested under the tile fan-out
	// (TestMVMCircuitBatchWorkersBitIdentical). The auto default still
	// picks 1 when tile tasks already fan out across the cores —
	// nesting a second fan-out there adds scheduling overhead without
	// adding parallelism, and fastcircuit's warm starts additionally
	// lose bit-reproducibility with concurrent batch items (see
	// funcsim.FastCircuit). -batch-workers overrides the heuristic for
	// flat workloads (one huge tile) where intra-batch concurrency is
	// the only parallelism available.
	batchWorkers := *batchWork
	if batchWorkers < 0 {
		batchWorkers = 0
		if spec.Circuit && *workers != 1 {
			batchWorkers = 1
		}
	}
	xcfg, err := xbar.NewConfig(*size, *size,
		xbar.WithVsupply(*vdd), xbar.WithRon(*ron), xbar.WithOnOffRatio(*onoff),
		xbar.WithPolicy(pol), xbar.WithBatchWorkers(batchWorkers))
	if err != nil {
		return err
	}
	fxp := quant.FxP{Bits: *bits, Frac: *bits - 3}
	simCfg, err := funcsim.NewConfig(xcfg,
		funcsim.WithFormats(fxp, fxp),
		funcsim.WithStreamBits(*streams), funcsim.WithSliceBits(*slices),
		funcsim.WithADCBits(*adc), funcsim.WithWorkers(*workers),
		funcsim.WithProbeRate(*probeRate))
	if err != nil {
		return err
	}

	fmt.Printf("training MiniResNet on %s (%d images, %d epochs)...\n", set.Name, *nTrain, *epochs)
	net := models.MiniResNet(set, *chans, *seed+30)
	if err := models.Train(net, set, models.TrainConfig{
		Epochs: *epochs, BatchSize: 32, LR: 0.05, Seed: *seed + 40, Verbose: os.Stderr,
	}); err != nil {
		return err
	}
	floatAcc := models.TestAccuracy(net, set, 64)
	fmt.Printf("float32 accuracy: %.2f%%\n", 100*floatAcc)

	// Build the analog model through the registry: the spec says what
	// the factory needs (solver health for circuit tiers, a trained
	// surrogate for GENIEx tiers); the tier-name switch that used to
	// live here is gone.
	params := funcsim.ModelParams{Xbar: simCfg.Xbar, Degraded: *degraded}
	var health *funcsim.SolverHealth
	if spec.Circuit {
		health = &funcsim.SolverHealth{}
		params.Health = health
	}
	if spec.NeedsSurrogate {
		var gx *core.Model
		if *geniexM != "" {
			var err error
			if gx, err = core.LoadModelFile(*geniexM); err != nil {
				return err
			}
			if gx.Cfg.Rows != *size {
				return fmt.Errorf("loaded GENIEx model is %dx%d, need %dx%d",
					gx.Cfg.Rows, gx.Cfg.Cols, *size, *size)
			}
		} else {
			fmt.Println("training GENIEx surrogate for the design point...")
			ds, err := core.Generate(simCfg.Xbar, core.GenOptions{
				Samples:    *gxSamples,
				StreamBits: *streams, SliceBits: *slices,
				Sparsities: []float64{0, 0.25, 0.5, 0.75, 0.9, 0.97},
				Seed:       *seed + 50,
			})
			if err != nil {
				return err
			}
			if gx, err = core.NewModel(simCfg.Xbar, 128, *seed+60); err != nil {
				return err
			}
			if err := gx.Train(ds, core.TrainOptions{Epochs: *gxEpochs, Seed: *seed + 70}); err != nil {
				return err
			}
		}
		params.Surrogate = gx
	}
	model, err := spec.New(params)
	if err != nil {
		return err
	}
	if *noise > 0 {
		model = &funcsim.Noisy{
			Inner: model, Sigma: *noise,
			FullScale: float64(simCfg.Xbar.Rows) * simCfg.Xbar.Vsupply * simCfg.Xbar.Gon(),
			Seed:      *seed + 80,
		}
	}
	if *calibrate {
		model = funcsim.Calibrated{Inner: model, Seed: *seed + 90, Xbar: simCfg.Xbar}
	}

	fmt.Printf("evaluating through the functional simulator (%s mode, %s)...\n",
		model.Name(), simCfg.Xbar.String())
	eng, err := funcsim.NewEngine(simCfg, model)
	if err != nil {
		return err
	}
	defer eng.Close()
	sim, err := funcsim.Lower(net, eng)
	if err != nil {
		return err
	}
	for _, line := range sim.Describe() {
		fmt.Println("  ", line)
	}
	acc, err := models.Accuracy(sim.Forward, set.TestX, set.TestY, 32)
	if err != nil {
		return err
	}
	fmt.Printf("crossbar accuracy: %.2f%%  (degradation %.2f%%)\n", 100*acc, 100*(floatAcc-acc))
	if health != nil {
		fmt.Println(health.Counts().String())
	}
	if p := eng.Probe(); p != nil {
		p.Drain(10 * time.Second)
		fmt.Println(p.Stats().String())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		n, err := obs.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (%d events)\n", *traceOut, n)
	}
	return nil
}
