// Command chip-report maps a CNN onto crossbar tiles and prints the
// architecture inventory (tiles, utilization, area, weight storage)
// plus a per-inference energy/latency estimate.
//
// Example:
//
//	chip-report -dataset cifar -channels 8 -size 32
package main

import (
	"flag"
	"fmt"
	"os"

	"geniex/internal/arch"
	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/models"
	"geniex/internal/xbar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chip-report:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dsName  = flag.String("dataset", "cifar", "dataset: cifar or imagenet")
		size    = flag.Int("size", 16, "crossbar (tile) size")
		chans   = flag.Int("channels", 8, "CNN width")
		arch_   = flag.String("model", "resnet", "CNN family: resnet, vgg or convnet")
		images  = flag.Int("images", 8, "images to run for the energy estimate")
		streams = flag.Int("streams", 4, "input stream width (bits)")
		slices  = flag.Int("slices", 4, "weight slice width (bits)")
	)
	flag.Parse()

	var set *dataset.Set
	switch *dsName {
	case "cifar":
		set = dataset.SynthCIFAR(*images, *images, 1)
	case "imagenet":
		set = dataset.SynthImageNet(*images, *images, 1)
	default:
		return fmt.Errorf("unknown dataset %q", *dsName)
	}
	var net = models.MiniResNet(set, *chans, 2)
	switch *arch_ {
	case "resnet":
	case "vgg":
		net = models.MiniVGG(set, *chans, 2)
	case "convnet":
		net = models.MiniConvNet(set, *chans, 2)
	default:
		return fmt.Errorf("unknown model family %q", *arch_)
	}

	xcfg, err := xbar.NewConfig(*size, *size)
	if err != nil {
		return err
	}
	cfg, err := funcsim.NewConfig(xcfg,
		funcsim.WithStreamBits(*streams), funcsim.WithSliceBits(*slices))
	if err != nil {
		return err
	}

	rep, err := arch.MapNetwork(net, cfg, arch.DefaultAreaModel())
	if err != nil {
		return err
	}
	fmt.Print(rep)

	eng, err := funcsim.NewEngine(cfg, funcsim.Ideal{})
	if err != nil {
		return err
	}
	sim, err := funcsim.Lower(net, eng)
	if err != nil {
		return err
	}
	if _, err := sim.Forward(set.TestX); err != nil {
		return err
	}
	stats := sim.Stats()
	cost := funcsim.DefaultEnergyModel().Estimate(stats, cfg)
	n := float64(set.TestX.Rows)
	fmt.Printf("\nworkload (%d images): %s\n", set.TestX.Rows, stats)
	fmt.Printf("per image: %.2f µJ, %.2f ms\n", cost.Energy/n*1e6, cost.Latency/n*1e3)
	return nil
}
