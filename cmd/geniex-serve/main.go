// Command geniex-serve is the overload-resilient serving frontend: it
// trains a small CNN on a synthetic dataset, lowers it through the
// functional simulator once per configured fidelity tier, and serves
// POST /v1/infer with deadlines, admission control, retry/backoff,
// per-tier circuit breakers, and a degradation ladder that sheds to
// cheaper tiers under load (see DESIGN.md §9).
//
// Example:
//
//	geniex-serve -addr 127.0.0.1:8080 -tiers analytical,ideal
//	curl -s localhost:8080/v1/infer -d '{"inputs":[[0.1, ...]]}'
//
// Endpoints: POST /v1/infer, GET /healthz, GET /metrics (obs
// snapshot; ?format=prom for Prometheus exposition), GET /trace
// (Chrome trace-event JSON), GET /debug/pprof/ with -pprof.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"geniex/internal/calib"
	"geniex/internal/core"
	"geniex/internal/dataset"
	"geniex/internal/funcsim"
	"geniex/internal/models"
	"geniex/internal/nonideal"
	"geniex/internal/obs"
	"geniex/internal/quant"
	"geniex/internal/serve"
	"geniex/internal/xbar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geniex-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		tiers = flag.String("tiers", "analytical,ideal", "fidelity ladder, most faithful first: comma-separated subset of "+strings.Join(funcsim.ModelNames(), ",")+"; the last is the floor")

		// Model and design point. The defaults keep startup fast; the
		// server's point is resilience machinery, not accuracy.
		size     = flag.Int("size", 8, "crossbar (tile) size")
		bits     = flag.Int("bits", 8, "weight/activation precision")
		streams  = flag.Int("streams", 2, "input stream width (bits)")
		slices   = flag.Int("slices", 2, "weight slice width (bits)")
		adcBits  = flag.Int("adc", 14, "ADC bits")
		channels = flag.Int("channels", 4, "CNN width")
		epochs   = flag.Int("epochs", 1, "CNN training epochs")
		nTrain   = flag.Int("train", 256, "training images")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "concurrent tile tasks per MVM (0 = all cores)")

		gxSamples = flag.Int("geniex-samples", 200, "geniex tier: dataset samples for surrogate training")
		gxEpochs  = flag.Int("geniex-epochs", 60, "geniex tier: surrogate training epochs")

		// Robustness knobs.
		maxInFlight = flag.Int("max-inflight", 4, "concurrently executing requests")
		tenantQueue = flag.Int("tenant-queue", 16, "per-tenant admission queue bound")
		deadlineD   = flag.Duration("deadline", time.Second, "default per-request deadline")
		maxDeadline = flag.Duration("max-deadline", 10*time.Second, "cap on client-requested deadlines")
		retryMax    = flag.Int("retry-max", 2, "retries per tier for transient failures")
		boBase      = flag.Duration("backoff-base", 5*time.Millisecond, "retry backoff base delay")
		boCap       = flag.Duration("backoff-cap", 80*time.Millisecond, "retry backoff cap")
		boFactor    = flag.Float64("backoff-factor", 2, "retry backoff multiplier")
		boJitter    = flag.Float64("backoff-jitter", 0.5, "retry backoff jitter fraction [0,1]")
		brkTrip     = flag.Int("breaker-trip", 5, "consecutive failures that open a tier's breaker")
		brkCooldown = flag.Duration("breaker-cooldown", time.Second, "breaker open→half-open cooldown")
		shedAt      = flag.Float64("shed-at", 1.5, "load factor at which non-floor tiers shed (0 disables)")

		// Probe-driven distrust: sample MVMs through the circuit
		// solver and shed the faithful tier when divergence drifts.
		probeRate  = flag.Int("probe-rate", 0, "sample 1 in n tile MVMs through the fidelity probe (0 disables)")
		driftLimit = flag.Float64("drift-limit", 0, "probe drift above which the probed tier is distrusted (0 disables)")
		sloRRMSE   = flag.Float64("slo-rrmse", 0, "fidelity SLO: probe rRMSE above which a sample is out of objective; distrust and (with -calibrate) recalibration key off the windowed burn rate (0 disables)")
		sloFidObj  = flag.Float64("slo-fidelity-objective", 0.9, "fidelity SLO: target fraction of probe samples with rRMSE under -slo-rrmse; burn rate >= 1 distrusts the tier")
		sloWindow  = flag.Duration("slo-window", time.Minute, "sliding window for the SLO burn-rate trackers")

		// Latency SLO: arms the serve.latency burn-rate tracker (obs
		// snapshot / Prometheus exposition / alerting).
		sloLatTarget = flag.Duration("slo-latency-target", 0, "latency SLO: a request is good when served within this target (0 disables the serve.latency tracker)")
		sloLatObj    = flag.Float64("slo-latency-objective", 0.99, "latency SLO: target fraction of requests served within -slo-latency-target")
		calibrate    = flag.Bool("calibrate", false, "adaptive tiers: fine-tune the surrogate in the background on probe shadow-solves and hot-swap improved versions into live traffic (needs -probe-rate)")
		canaryN      = flag.Int("calibrate-canary", 16, "adaptive tiers: while distrusted, let 1 in n requests through anyway so the probe keeps sampling and calibration can both train and observe recovery (0 starves the loop)")

		// Chaos layer (tests and smoke): see serve.ChaosPolicy.
		chaosLatency  = flag.Duration("chaos-latency", 0, "chaos: latency injected into tier execution")
		chaosJitter   = flag.Duration("chaos-latency-jitter", 0, "chaos: extra uniform latency")
		chaosErrRate  = flag.Float64("chaos-error-rate", 0, "chaos: probability a tier execution fails transiently")
		chaosSpare    = flag.Bool("chaos-spare-floor", true, "chaos: exempt the floor tier from injection")
		chaosStallN   = flag.Int("chaos-stall-every", 0, "chaos: stall every nth admitted request (0 disables)")
		chaosStall    = flag.Duration("chaos-stall", 0, "chaos: queue-stall duration")
		chaosFailAtt  = flag.Int("chaos-fail-attempts", 0, "chaos: xbar fault plan — fail the first n solve attempts per circuit batch item")
		chaosStuckOn  = flag.Float64("chaos-stuck-on", 0, "chaos: probability a circuit-tier cell is stuck at Gon")
		chaosStuckOff = flag.Float64("chaos-stuck-off", 0, "chaos: probability a circuit-tier cell is stuck at Goff")
		chaosSeed     = flag.Uint64("chaos-seed", 1, "chaos: injection schedule seed")
		metricsEnable = flag.Bool("metrics", true, "enable the obs registry")
		withPprof     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	if *metricsEnable {
		obs.SetEnabled(true)
	}

	tierNames := strings.Split(*tiers, ",")
	if len(tierNames) == 0 || tierNames[0] == "" {
		return fmt.Errorf("empty -tiers")
	}

	// Train the float model once; every tier lowers the same network.
	set := dataset.SynthCIFAR(*nTrain, 16, *seed+10)
	fmt.Printf("serve: training MiniConvNet on %s (%d images, %d epochs)...\n", set.Name, *nTrain, *epochs)
	net0 := models.MiniConvNet(set, *channels, *seed+30)
	if err := models.Train(net0, set, models.TrainConfig{
		Epochs: *epochs, BatchSize: 32, LR: 0.05, Seed: *seed + 40,
	}); err != nil {
		return err
	}

	fxp := quant.FxP{Bits: *bits, Frac: *bits - 3}
	newSimCfg := func(xcfg xbar.Config, probe int, swappable bool) (funcsim.Config, error) {
		opts := []funcsim.Option{
			funcsim.WithFormats(fxp, fxp),
			funcsim.WithStreamBits(*streams), funcsim.WithSliceBits(*slices),
			funcsim.WithADCBits(*adcBits), funcsim.WithWorkers(*workers),
			funcsim.WithProbeRate(probe),
		}
		if swappable {
			opts = append(opts, funcsim.WithSwappable())
		}
		return funcsim.NewConfig(xcfg, opts...)
	}

	chaos := &serve.ChaosPolicy{
		Latency: *chaosLatency, LatencyJitter: *chaosJitter,
		ErrorRate: *chaosErrRate, SpareFloor: *chaosSpare,
		StallEvery: *chaosStallN, Stall: *chaosStall,
		Seed: *chaosSeed,
	}
	if *chaosFailAtt > 0 || *chaosStuckOn > 0 || *chaosStuckOff > 0 {
		chaos.Faults = &xbar.FaultPlan{FailAttempts: *chaosFailAtt}
		if *chaosStuckOn > 0 || *chaosStuckOff > 0 {
			chaos.Faults.StuckAt = &nonideal.StuckAt{POn: *chaosStuckOn, POff: *chaosStuckOff}
			chaos.Faults.StuckSeed = *chaosSeed
		}
	}

	var (
		ladder   []serve.Tier
		prevRank int
		sharedGX *core.Model // surrogate trained once, shared by every tier that needs it
		// fidSLO is the shared fidelity burn-rate tracker; every probed
		// tier's samples feed it (good = rRMSE within -slo-rrmse), and
		// both the distrust gate and the calibration trigger key off
		// its burn rate rather than raw point gauges.
		fidSLO *obs.SLO
	)
	for i, name := range tierNames {
		name = strings.TrimSpace(name)
		spec, err := funcsim.ModelByName(name)
		if err != nil {
			return err
		}
		// The ladder degrades: each tier must be strictly less faithful
		// than the one before it, by registry rank.
		if i > 0 && spec.Rank >= prevRank {
			return fmt.Errorf("tier %q (rank %d) is not less faithful than its predecessor (rank %d); order -tiers most faithful first",
				name, spec.Rank, prevRank)
		}
		prevRank = spec.Rank

		xcfg, err := xbar.NewConfig(*size, *size, xbar.WithBatchWorkers(1))
		if err != nil {
			return err
		}
		if spec.Circuit && chaos.Faults != nil {
			xcfg = xcfg.WithFaults(chaos.Faults)
		}
		// The fidelity probe rides on the first non-circuit tier (both
		// circuit tiers already run the solver it shadows) — and, with
		// -calibrate, on every adaptive tier, whose calibrator feeds on
		// the probe's shadow-solves.
		adaptive := spec.Adaptive && *calibrate
		probe := 0
		if (i == 0 || adaptive) && !spec.Circuit {
			probe = *probeRate
		}
		simCfg, err := newSimCfg(xcfg, probe, adaptive)
		if err != nil {
			return err
		}

		params := funcsim.ModelParams{Xbar: simCfg.Xbar}
		if spec.Circuit {
			params.Health = &funcsim.SolverHealth{}
		}
		if spec.NeedsSurrogate {
			if sharedGX == nil {
				fmt.Println("serve: training GENIEx surrogate...")
				if sharedGX, err = trainSurrogate(simCfg.Xbar, *streams, *slices, *gxSamples, *gxEpochs, *seed); err != nil {
					return err
				}
			}
			params.Surrogate = sharedGX
		}
		model, err := spec.New(params)
		if err != nil {
			return err
		}

		eng, err := funcsim.NewEngine(simCfg, model)
		if err != nil {
			return err
		}
		defer eng.Close()
		sim, err := funcsim.Lower(net0, eng)
		if err != nil {
			return err
		}
		tier := serve.Tier{Name: name, Runner: sim, Version: eng.ModelVersion}
		if i < len(tierNames)-1 {
			tier.ShedAt = *shedAt
		}
		if p := eng.Probe(); p != nil && *sloRRMSE > 0 {
			// Feed the shared fidelity SLO: each probe shadow-solve is
			// one observation, good when its rRMSE met -slo-rrmse. The
			// hook is separate from the calibrator's sample tap, so
			// both consumers see every sample.
			if fidSLO == nil {
				fidSLO = obs.NewSLO("funcsim.probe.fidelity", obs.SLOConfig{
					Objective: *sloFidObj, Window: *sloWindow,
				})
			}
			slo, thr := fidSLO, *sloRRMSE
			p.OnSample(func(rr float64) { slo.Observe(rr <= thr) })
		}
		if p := eng.Probe(); p != nil && (*driftLimit > 0 || fidSLO != nil) {
			limit, slo := *driftLimit, fidSLO
			// A distrusted tier serves no traffic, so its probe stops
			// sampling — which would starve the calibrator of training
			// data AND freeze the very signals that could clear the
			// distrust. While calibrating, canary 1 in n requests
			// through the gate to keep the loop live.
			canary := &atomic.Uint64{}
			canaryEvery := uint64(0)
			if adaptive && *canaryN > 0 {
				canaryEvery = uint64(*canaryN)
			}
			tier.Distrust = func() bool {
				st := p.Stats()
				out := (limit > 0 && st.BaselineRecorded && st.Drift > limit) ||
					(slo != nil && slo.BurnRate() >= 1)
				if out && canaryEvery > 0 && canary.Add(1)%canaryEvery == 0 {
					return false
				}
				return out
			}
		}
		if adaptive {
			if p := eng.Probe(); p == nil {
				return fmt.Errorf("tier %q: -calibrate needs -probe-rate > 0 (the calibrator trains on probe shadow-solves)", name)
			} else {
				calCfg := calib.Config{
					Model: sharedGX,
					Probe: p,
					Swap: func(m *core.Model) (int64, error) {
						return eng.SwapModel(funcsim.GENIEx{Model: m})
					},
					SLO:            *sloRRMSE,
					DriftThreshold: *driftLimit,
					Seed:           *seed + 100,
				}
				if fidSLO != nil {
					// Burn-rate trigger: a tuning round is warranted when
					// the fidelity error budget is burning unsustainably,
					// or on raw drift past -drift-limit. Replaces the
					// built-in point-gauge checks.
					slo, limit := fidSLO, *driftLimit
					calCfg.Trigger = func() bool {
						if slo.BurnRate() >= 1 {
							return true
						}
						st := p.Stats()
						return limit > 0 && st.BaselineRecorded && st.Drift > limit
					}
				}
				cal, err := calib.New(calCfg)
				if err != nil {
					return err
				}
				defer cal.Close()
				fmt.Printf("serve: tier %s: online calibration armed (slo-rrmse %g, drift-limit %g)\n", name, *sloRRMSE, *driftLimit)
			}
		}
		ladder = append(ladder, tier)
		fmt.Printf("serve: tier %d: %s (%d crossbars/layer-matrix)\n", i, name, simCfg.Xbar.Rows)
	}

	srv, err := serve.NewServer(serve.Config{
		Tiers:       ladder,
		In:          set.Features(),
		Out:         set.Classes,
		MaxInFlight: *maxInFlight,
		TenantQueue: *tenantQueue,
		Deadline:    *deadlineD,
		MaxDeadline: *maxDeadline,
		RetryMax:    *retryMax,
		Backoff:     serve.Backoff{Base: *boBase, Cap: *boCap, Factor: *boFactor, Jitter: *boJitter},
		BreakerTrip: *brkTrip, BreakerCooldown: *brkCooldown,
		Chaos:            chaos,
		Seed:             *seed,
		LatencyTarget:    *sloLatTarget,
		LatencyObjective: *sloLatObj,
		LatencySLOWindow: *sloWindow,
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/infer", srv)
	mux.Handle("/healthz", srv)
	mux.Handle("/metrics", obs.Handler())
	mux.Handle("/trace", obs.Default().TraceHandler())
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serve: listening on http://%s\n", ln.Addr())
	return http.Serve(ln, mux)
}

// trainSurrogate builds a GENIEx surrogate for the design point (the
// geniex tier has no pretrained-model path here; keep the sample and
// epoch counts small).
func trainSurrogate(xcfg xbar.Config, streams, slices, samples, epochs int, seed uint64) (*core.Model, error) {
	ds, err := core.Generate(xcfg, core.GenOptions{
		Samples:    samples,
		StreamBits: streams, SliceBits: slices,
		Sparsities: []float64{0, 0.5, 0.9},
		Seed:       seed + 50,
	})
	if err != nil {
		return nil, err
	}
	gx, err := core.NewModel(xcfg, 64, seed+60)
	if err != nil {
		return nil, err
	}
	if err := gx.Train(ds, core.TrainOptions{Epochs: epochs, Seed: seed + 70}); err != nil {
		return nil, err
	}
	return gx, nil
}
