// Command geniex-sweep runs a declarative non-ideality scenario grid:
// the cross product of array sizes, named nonideal stacks, fidelity
// tiers, and seeds, with every completed cell checkpointed atomically
// so a crashed or interrupted sweep resumes where it stopped.
//
// The grid comes from a JSON spec file (-spec); -print-spec emits a
// commented starting point. Each cell measures the divergence of its
// tier's MVM output from the clean ideal lowering of the same
// workload. Results land one JSON file per cell under -out/cells/,
// plus -out/summary.json aggregating over seeds.
//
// A sweep interrupted by SIGINT (or killed outright) restarts with
// -resume: cells whose checkpoint files exist are skipped, the rest
// run, and because every cell is deterministic the final result set is
// bit-identical to an uninterrupted run's.
//
// Example:
//
//	geniex-sweep -print-spec > sweep.json
//	geniex-sweep -spec sweep.json -out results/
//	...crash or ^C...
//	geniex-sweep -spec sweep.json -out results/ -resume
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"geniex/internal/nonideal"
	"geniex/internal/obs"
	"geniex/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geniex-sweep:", err)
		os.Exit(1)
	}
}

// defaultSpec is the -print-spec starting grid: every builtin
// component appears in some stack, across two array sizes and the
// cheap tiers plus the circuit truth.
func defaultSpec() sweep.Spec {
	return sweep.Spec{
		Name:  "nonideal-grid",
		Sizes: []int{8, 16},
		Stacks: []sweep.StackSpec{
			{Name: "clean"},
			{Name: "stuck", Stack: nonideal.Stack{
				&nonideal.StuckAt{POn: 0.02, POff: 0.05},
			}},
			{Name: "variation", Stack: nonideal.Stack{
				&nonideal.D2DVariation{Sigma: 0.2},
				&nonideal.C2CVariation{Sigma: 0.05},
			}},
			{Name: "aged", Stack: nonideal.Stack{
				&nonideal.StuckAt{POn: 0.01, POff: 0.02, Cluster: 2},
				&nonideal.D2DVariation{Sigma: 0.15},
				&nonideal.Drift{Nu: 0.03, Tau0: 10},
				&nonideal.ReadNoise{Sigma: 0.01},
			}},
		},
		Models: []string{sweep.ModelIdeal, sweep.ModelAnalytical, sweep.ModelCircuit},
		Seeds:  []uint64{1, 2, 3},
		Time:   1e5,
	}
}

func run() error {
	var (
		specPath  = flag.String("spec", "", "sweep spec JSON file (empty: the -print-spec default grid)")
		outDir    = flag.String("out", "sweep-out", "checkpoint/result directory")
		resume    = flag.Bool("resume", false, "skip cells already checkpointed in -out")
		jobs      = flag.Int("jobs", 0, "concurrent cells (0 = spec's Jobs, else GOMAXPROCS)")
		printSpec = flag.Bool("print-spec", false, "write the default spec JSON to stdout and exit")
		cellDelay = flag.Duration("cell-delay", 0, "testing: artificial pause before each executed cell")
		metrics   = flag.Bool("metrics", false, "enable the obs registry and print sweep counters at exit")
	)
	flag.Parse()

	spec := defaultSpec()
	if *printSpec {
		b, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	if *specPath != "" {
		b, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		spec = sweep.Spec{}
		if err := json.Unmarshal(b, &spec); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	}
	if *metrics {
		obs.SetEnabled(true)
	}

	// SIGINT stops dispatching new cells and leaves the checkpoints on
	// disk; a second SIGINT kills the process the hard way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	out, err := sweep.Run(ctx, spec, sweep.Options{
		Dir: *outDir, Resume: *resume, Jobs: *jobs, CellDelay: *cellDelay,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if out != nil {
		fmt.Printf("sweep: executed=%d skipped=%d failed=%d in %v\n",
			out.Executed, out.Skipped, len(out.Failures), time.Since(start).Round(time.Millisecond))
	}
	if err != nil {
		return err
	}
	if *metrics {
		snap := obs.Snapshot()
		for _, prefix := range []string{"sweep.", "nonideal."} {
			names := make([]string, 0, len(snap.Counters))
			for name := range snap.Counters {
				if strings.HasPrefix(name, prefix) {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("metric: %s = %d\n", name, snap.Counters[name])
			}
		}
	}

	fmt.Printf("\n%-36s %6s %12s %12s %10s\n", "group", "seeds", "mean_rrmse", "max_rrmse", "degraded")
	for _, g := range out.Summary.Groups {
		fmt.Printf("%-36s %6d %12.4g %12.4g %10.3f\n",
			g.Key, g.Seeds, g.MeanRRMSE, g.MaxRRMSE, g.MeanDegraded)
	}
	if len(out.Failures) > 0 {
		fmt.Printf("\n%d failed cells (no checkpoint written; -resume retries them):\n", len(out.Failures))
		for _, f := range out.Failures {
			fmt.Printf("  %s: %s\n", f.ID, f.Err)
		}
		return fmt.Errorf("%d cells failed", len(out.Failures))
	}
	return nil
}
