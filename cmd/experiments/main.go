// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -fig 5 -scale quick
//	experiments -all -scale quick -out results.txt
//
// Scales: tiny (seconds), quick (minutes, default), full (hours,
// approaches the paper's 64×64 / 500-hidden configuration).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"geniex/internal/experiments"
	"geniex/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		fig    = flag.String("fig", "", "experiment ID to run (e.g. 2b, 5, 7a, table3)")
		all    = flag.Bool("all", false, "run every experiment")
		scale  = flag.String("scale", "quick", "scale: tiny, quick or full")
		out    = flag.String("out", "", "also write results to this file")
		csvDir = flag.String("csv", "", "also write one CSV per experiment into this directory")
		quiet  = flag.Bool("q", false, "suppress progress logging")
		seed   = flag.Uint64("seed", 1, "master random seed")

		metricsAddr = flag.String("metrics-addr", "", "serve the obs metrics snapshot over HTTP on this address (e.g. 127.0.0.1:0); empty disables")
		withPprof   = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the metrics address")
		traceOut    = flag.String("trace-out", "", "write recorded spans as Chrome trace-event JSON to this file after the run")
	)
	flag.Parse()

	if *metricsAddr != "" {
		addr, err := obs.Serve(*metricsAddr, *withPprof)
		if err != nil {
			return err
		}
		fmt.Printf("metrics: serving on http://%s/metrics\n", addr)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.TinyScale()
	case "quick":
		sc = experiments.QuickScale()
	case "full":
		sc = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	sc.Seed = *seed

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		sink = io.MultiWriter(os.Stdout, f)
	}
	var log io.Writer
	if !*quiet {
		log = os.Stderr
	}
	ctx := experiments.NewContext(sc, log)

	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *fig != "":
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			toRun = append(toRun, e)
		}
	default:
		return fmt.Errorf("nothing to do: pass -fig <id>[,<id>...], -all or -list")
	}

	fmt.Fprintf(sink, "# GENIEx experiments — scale=%s seed=%d\n\n", sc.Name, sc.Seed)
	for _, e := range toRun {
		start := time.Now()
		table, err := e.Run(ctx)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		table.Fprint(sink)
		fmt.Fprintf(sink, "  [%s in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, "fig"+e.ID+".csv"))
			if err != nil {
				return err
			}
			if err := table.CSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		n, err := obs.WriteTrace(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (%d events)\n", *traceOut, n)
	}
	return nil
}
