// Command geniex-train generates a (V, G, fR) dataset with the
// circuit-level solver, trains a GENIEx surrogate on it, reports the
// Fig. 5 fidelity comparison against the analytical model, and
// optionally saves the trained model for later use with funcsim-run.
//
// Example:
//
//	geniex-train -size 16 -vdd 0.25 -samples 500 -hidden 128 -o geniex16.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"geniex/internal/core"
	"geniex/internal/xbar"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "geniex-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		size     = flag.Int("size", 16, "crossbar rows = cols")
		ron      = flag.Float64("ron", 100e3, "ON resistance (ohms)")
		onoff    = flag.Float64("onoff", 6, "conductance ON/OFF ratio")
		vdd      = flag.Float64("vdd", 0.25, "supply voltage (volts)")
		samples  = flag.Int("samples", 500, "training samples (circuit solves)")
		hidden   = flag.Int("hidden", 128, "hidden layer width (paper: 500)")
		epochs   = flag.Int("epochs", 150, "training epochs")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output path for the trained model (gob)")
		saveData = flag.String("save-data", "", "also save the generated dataset (gob)")
		loadData = flag.String("load-data", "", "load a previously saved dataset instead of generating")
		verbose  = flag.Bool("v", false, "log per-epoch training loss")
	)
	flag.Parse()

	cfg, err := xbar.NewConfig(*size, *size,
		xbar.WithRon(*ron), xbar.WithOnOffRatio(*onoff), xbar.WithVsupply(*vdd))
	if err != nil {
		return err
	}
	fmt.Println("design point:", cfg.String())

	var ds *core.Dataset
	if *loadData != "" {
		var err error
		if ds, err = core.LoadDatasetFile(*loadData); err != nil {
			return err
		}
		cfg = ds.Cfg
		fmt.Printf("loaded %d samples from %s (design point %s)\n", ds.Len(), *loadData, cfg.String())
	} else {
		fmt.Printf("generating %d labelled samples with the circuit solver...\n", *samples)
		var err error
		if ds, err = core.Generate(cfg, core.GenOptions{Samples: *samples, Seed: *seed}); err != nil {
			return err
		}
		if *saveData != "" {
			if err := ds.SaveFile(*saveData); err != nil {
				return err
			}
			fmt.Println("dataset saved to", *saveData)
		}
	}
	train, val := ds.Split(0.2, *seed+1)

	model, err := core.NewModel(cfg, *hidden, *seed+2)
	if err != nil {
		return err
	}
	opts := core.TrainOptions{Epochs: *epochs, BatchSize: 32, LR: 1.5e-3, Seed: *seed + 3}
	if *verbose {
		opts.Verbose = os.Stderr
	}
	fmt.Printf("training GENIEx (%d -> %d -> %d) for %d epochs...\n",
		cfg.Rows+cfg.Rows*cfg.Cols, *hidden, cfg.Cols, *epochs)
	if err := model.Train(train, opts); err != nil {
		return err
	}

	gx := core.Evaluate(model, val)
	ana := core.Evaluate(core.AnalyticalAdapter{Cfg: cfg}, val)
	fmt.Printf("held-out NF RMSE:  GENIEx %.4f  analytical %.4f  (%.1fx better)\n",
		gx.RMSENF, ana.RMSENF, ana.RMSENF/gx.RMSENF)
	fmt.Printf("held-out fR RMSE:  GENIEx %.4f  analytical %.4f\n", gx.RMSERatio, ana.RMSERatio)

	if *out != "" {
		if err := model.SaveFile(*out); err != nil {
			return err
		}
		fmt.Println("model saved to", *out)
	}
	return nil
}
