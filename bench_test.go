// Package geniex_bench holds one benchmark per paper table/figure plus
// microbenchmarks of the load-bearing kernels. Benchmarks run the
// experiments at tiny scale so `go test -bench=.` completes in
// minutes; use cmd/experiments -scale quick|full for faithful
// reproductions.
package geniex_bench

import (
	"math"
	"testing"

	"geniex/internal/core"
	"geniex/internal/dataset"
	"geniex/internal/experiments"
	"geniex/internal/funcsim"
	"geniex/internal/linalg"
	"geniex/internal/models"
	"geniex/internal/xbar"
)

// benchCtx builds a fresh tiny-scale experiment context per benchmark
// so cached CNNs/surrogates don't leak between measurements.
func benchCtx() *experiments.Context {
	return experiments.NewContext(experiments.TinyScale(), nil)
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		ctx := benchCtx()
		if _, err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2a reproduces Fig. 2(a): ideal vs non-ideal currents.
func BenchmarkFig2a(b *testing.B) { runExperiment(b, "2a") }

// BenchmarkFig2b reproduces Fig. 2(b): NF vs crossbar size.
func BenchmarkFig2b(b *testing.B) { runExperiment(b, "2b") }

// BenchmarkFig2c reproduces Fig. 2(c): NF vs ON resistance.
func BenchmarkFig2c(b *testing.B) { runExperiment(b, "2c") }

// BenchmarkFig2d reproduces Fig. 2(d): NF vs ON/OFF ratio.
func BenchmarkFig2d(b *testing.B) { runExperiment(b, "2d") }

// BenchmarkFig3 reproduces Fig. 3: non-linearity vs supply voltage.
func BenchmarkFig3(b *testing.B) { runExperiment(b, "3") }

// BenchmarkFig5 reproduces Fig. 5: NF RMSE of GENIEx vs analytical.
func BenchmarkFig5(b *testing.B) { runExperiment(b, "5") }

// BenchmarkFig7a reproduces Fig. 7(a): accuracy vs crossbar size.
func BenchmarkFig7a(b *testing.B) { runExperiment(b, "7a") }

// BenchmarkFig7b reproduces Fig. 7(b): accuracy vs ON resistance.
func BenchmarkFig7b(b *testing.B) { runExperiment(b, "7b") }

// BenchmarkFig7c reproduces Fig. 7(c): accuracy vs ON/OFF ratio.
func BenchmarkFig7c(b *testing.B) { runExperiment(b, "7c") }

// BenchmarkFig7d reproduces Fig. 7(d): analytical vs GENIEx accuracy.
func BenchmarkFig7d(b *testing.B) { runExperiment(b, "7d") }

// BenchmarkFig8 reproduces Fig. 8: accuracy vs operand precision.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "8") }

// BenchmarkFig9 reproduces Fig. 9: accuracy vs stream/slice widths.
func BenchmarkFig9(b *testing.B) { runExperiment(b, "9") }

// BenchmarkTable3 prints the simulator parameter inventory.
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// --- Microbenchmarks of the kernels the experiments are built on ---

// BenchmarkCircuitSolve16 measures one full non-linear circuit solve
// of a 16×16 crossbar (the HSPICE-substitute inner loop).
func BenchmarkCircuitSolve16(b *testing.B) {
	benchmarkCircuitSolve(b, 16)
}

// BenchmarkCircuitSolve32 measures a 32×32 solve.
func BenchmarkCircuitSolve32(b *testing.B) {
	benchmarkCircuitSolve(b, 32)
}

func benchmarkCircuitSolve(b *testing.B, n int) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = n, n
	rng := linalg.NewRNG(1)
	g := linalg.NewDense(n, n)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = cfg.Vsupply * rng.Float64()
	}
	xb, err := xbar.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := xb.Program(g); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xb.Solve(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGENIExForward measures batched surrogate inference with a
// cached conductance context (the functional simulator's hot path).
func BenchmarkGENIExForward(b *testing.B) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 16, 16
	model, err := core.NewModel(cfg, 128, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := linalg.NewRNG(2)
	g := linalg.NewDense(16, 16)
	for i := range g.Data {
		g.Data[i] = cfg.ConductanceFromLevel(rng.Float64())
	}
	ctx := model.NewGContext(g)
	v := linalg.NewDense(64, 16)
	for i := range v.Data {
		v.Data[i] = cfg.Vsupply * rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.PredictWithContext(v, ctx)
	}
}

// BenchmarkFuncsimConvLayer measures one conv2d-mvm layer through the
// ideal pipeline (tiling + bit slicing + ADC + shift-add).
func BenchmarkFuncsimConvLayer(b *testing.B) {
	set := dataset.SynthCIFAR(8, 8, 1)
	net := models.MiniConvNet(set, 8, 2)
	cfg := funcsim.DefaultConfig()
	cfg.Xbar.Rows, cfg.Xbar.Cols = 16, 16
	eng, err := funcsim.NewEngine(cfg, funcsim.Ideal{})
	if err != nil {
		b.Fatal(err)
	}
	sim, err := funcsim.Lower(net, eng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Forward(set.TestX); err != nil {
			b.Fatal(err)
		}
	}
}

// --- MVM pipeline benchmarks (run with -benchmem) ---

// mvmBench lowers a multi-tile weight matrix under the given model and
// returns the lowered matrix plus an input batch and output buffer.
func mvmBench(b *testing.B, cfg funcsim.Config, model funcsim.Model, in, out, batch int) (*funcsim.Matrix, *linalg.Dense, *linalg.Dense) {
	b.Helper()
	eng, err := funcsim.NewEngine(cfg, model)
	if err != nil {
		b.Fatal(err)
	}
	rng := linalg.NewRNG(3)
	w := linalg.NewDense(in, out)
	for i := range w.Data {
		w.Data[i] = 2*rng.Float64() - 1
	}
	mat, err := eng.Lower(w)
	if err != nil {
		b.Fatal(err)
	}
	x := linalg.NewDense(batch, in)
	for i := range x.Data {
		x.Data[i] = 2*rng.Float64() - 1
	}
	return mat, x, linalg.NewDense(batch, out)
}

func runMVM(b *testing.B, mat *funcsim.Matrix, dst, x *linalg.Dense) {
	b.Helper()
	if err := mat.MVMInto(dst, x); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mat.MVMInto(dst, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMVMIdeal measures the ideal-model tile pipeline; the
// steady state must report 0 allocs/op (the run pool owns all
// scratch). Serial vs parallel shows the worker-pool speedup on
// multi-core hosts — results are bit-identical either way.
func BenchmarkMVMIdeal(b *testing.B) {
	const in, out, batch = 96, 64, 16 // 6×4 tile grid at 16×16
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := funcsim.DefaultConfig()
			cfg.Xbar.Rows, cfg.Xbar.Cols = 16, 16
			cfg.Workers = bc.workers
			mat, x, dst := mvmBench(b, cfg, funcsim.Ideal{}, in, out, batch)
			runMVM(b, mat, dst, x)
		})
	}
}

// BenchmarkMVMIdealProbed measures the ideal pipeline with the online
// fidelity probe sampling 1 in 16 tile tasks. Throughput should sit
// within a few percent of BenchmarkMVMIdeal/parallel: the sampling
// decision is one atomic add and the shadow solves run on the probe's
// goroutine under its duty-cycle bound. The small allocs/op reading
// here belongs to those background circuit solves (benchmem counts
// every goroutine); the MVM path itself stays at 0 allocs/op
// (TestProbedMVMIntoSteadyStateAllocs).
func BenchmarkMVMIdealProbed(b *testing.B) {
	const in, out, batch = 96, 64, 16 // 6×4 tile grid at 16×16
	cfg := funcsim.DefaultConfig()
	cfg.Xbar.Rows, cfg.Xbar.Cols = 16, 16
	cfg.ProbeRate = 16
	eng, err := funcsim.NewEngine(cfg, funcsim.Ideal{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	rng := linalg.NewRNG(3)
	w := linalg.NewDense(in, out)
	for i := range w.Data {
		w.Data[i] = 2*rng.Float64() - 1
	}
	mat, err := eng.Lower(w)
	if err != nil {
		b.Fatal(err)
	}
	x := linalg.NewDense(batch, in)
	for i := range x.Data {
		x.Data[i] = 2*rng.Float64() - 1
	}
	dst := linalg.NewDense(batch, out)
	runMVM(b, mat, dst, x)
}

// BenchmarkMVMGENIEx measures the surrogate-model pipeline with the
// shared per-block voltage context and pooled prediction workspaces.
func BenchmarkMVMGENIEx(b *testing.B) {
	cfg := funcsim.DefaultConfig()
	cfg.Xbar.Rows, cfg.Xbar.Cols = 16, 16
	model, err := core.NewModel(cfg.Xbar, 128, 4)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg.Workers = bc.workers
			mat, x, dst := mvmBench(b, cfg, funcsim.GENIEx{Model: model}, 48, 32, 8)
			runMVM(b, mat, dst, x)
		})
	}
}

// rrmse is the relative root-mean-square divergence between an output
// batch and its reference — the same statistic the online fidelity
// probe reports.
func rrmse(got, ref *linalg.Dense) float64 {
	var num, den float64
	for i := range ref.Data {
		d := got.Data[i] - ref.Data[i]
		num += d * d
		den += ref.Data[i] * ref.Data[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// BenchmarkMVMCircuit measures the circuit-model pipeline. The serial
// baseline pins both the tile tasks (Workers=1) and the batch solver
// (BatchWorkers=1) to one goroutine; the parallel case fans tile tasks
// across the worker pool with the persistent per-tile crossbar pools
// carrying the programmed instances. On a multi-core host the parallel
// case is expected to be ≥2× faster wall-clock; outputs are
// bit-identical in both.
//
// The cold/seeded/warm sub-benchmarks compare Newton start strategies
// at fixed serial execution: cold rebuilds every solve from a zero
// state (the pre-cache behaviour), seeded starts from the cached MNA
// factorization's direct solve (the default), and warm is the
// fastcircuit tier reusing each pooled instance's previous converged
// state. Each is gated on probe-statistic rRMSE against a cold
// reference before timing, so the latency numbers compare matched
// outputs; seeded is expected ≥5× faster than cold in steady state.
func BenchmarkMVMCircuit(b *testing.B) {
	const in, out, batch = 16, 16, 4 // 2×2 tile grid at 8×8
	serialCfg := func() funcsim.Config {
		cfg := funcsim.DefaultConfig()
		cfg.Xbar.Rows, cfg.Xbar.Cols = 8, 8
		cfg.Workers = 1
		cfg.Xbar.BatchWorkers = 1 // parallelism lives in the tile tasks
		return cfg
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := serialCfg()
			cfg.Workers = bc.workers
			mat, x, dst := mvmBench(b, cfg, funcsim.Circuit{Cfg: cfg.Xbar}, in, out, batch)
			runMVM(b, mat, dst, x)
		})
	}

	coldRef := func(b *testing.B) (*linalg.Dense, *linalg.Dense) {
		cfg := serialCfg()
		cfg.Xbar.Start = xbar.StartCold
		mat, x, ref := mvmBench(b, cfg, funcsim.Circuit{Cfg: cfg.Xbar}, in, out, batch)
		if err := mat.MVMInto(ref, x); err != nil {
			b.Fatal(err)
		}
		return ref, x
	}
	for _, sc := range []struct {
		name  string
		start xbar.SolverStart
		model func(cfg xbar.Config) funcsim.Model
	}{
		{"cold", xbar.StartCold, func(cfg xbar.Config) funcsim.Model { return funcsim.Circuit{Cfg: cfg} }},
		{"seeded", xbar.StartSeeded, func(cfg xbar.Config) funcsim.Model { return funcsim.Circuit{Cfg: cfg} }},
		{"warm", xbar.StartWarm, func(cfg xbar.Config) funcsim.Model { return funcsim.FastCircuit{Cfg: cfg} }},
	} {
		b.Run(sc.name, func(b *testing.B) {
			ref, _ := coldRef(b)
			cfg := serialCfg()
			cfg.Xbar.Start = sc.start
			mat, x, dst := mvmBench(b, cfg, sc.model(cfg.Xbar), in, out, batch)
			if err := mat.MVMInto(dst, x); err != nil {
				b.Fatal(err)
			}
			if r := rrmse(dst, ref); r > 1e-6 {
				b.Fatalf("%s output diverges from cold reference: rRMSE %g", sc.name, r)
			}
			runMVM(b, mat, dst, x)
		})
	}
}

// BenchmarkDatasetGeneration measures labelled (V, G, fR) sample
// production (circuit solves dominate).
func BenchmarkDatasetGeneration(b *testing.B) {
	cfg := xbar.DefaultConfig()
	cfg.Rows, cfg.Cols = 8, 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(cfg, core.GenOptions{Samples: 16, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
