module geniex

go 1.22
