# Developer entry points. `make check` is the full gate: vet, build,
# the whole test suite, and the race detector on the packages with
# concurrent solver paths.

GO ?= go

# Packages whose batch/solver code fans out across goroutines; the
# race detector must stay clean on these.
RACE_PKGS = ./internal/xbar ./internal/funcsim ./internal/linalg

.PHONY: check vet build test race

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)
