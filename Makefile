# Developer entry points. `make check` is the full gate: vet, build,
# the whole test suite, and the race detector on the packages with
# concurrent solver paths.

GO ?= go

# Packages whose MVM/batch/solver code fans out across goroutines; the
# race detector must stay clean on these. -short skips the
# circuit-in-the-loop pipeline tests that are too slow under race
# instrumentation.
RACE_PKGS = ./internal/xbar ./internal/funcsim ./internal/hwtrain ./internal/linalg ./internal/obs

.PHONY: check vet build test race bench obs-smoke

check: vet build test race obs-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

# MVM pipeline benchmarks: serial vs parallel wall-clock and the
# allocs/op contract (ideal steady state must report 0 allocs/op).
bench:
	$(GO) test -run NONE -bench 'BenchmarkMVM' -benchmem .

# End-to-end metrics gate: run a tiny funcsim-run with -metrics-addr,
# scrape the endpoint, and assert the JSON snapshot holds live solver
# and tile histograms.
obs-smoke:
	$(GO) run ./scripts/obssmoke
