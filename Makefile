# Developer entry points. `make check` is the full gate: formatting,
# vet, build, the whole test suite, the race detector on the packages
# with concurrent solver paths, and the end-to-end smokes.

GO ?= go

# Packages whose MVM/batch/solver code fans out across goroutines; the
# race detector must stay clean on these. -short skips the
# circuit-in-the-loop pipeline tests that are too slow under race
# instrumentation.
RACE_PKGS = ./internal/xbar ./internal/funcsim ./internal/hwtrain ./internal/linalg ./internal/obs ./internal/serve

.PHONY: check fmt vet build test race bench obs-smoke trace-smoke serve-smoke sweep-smoke calib-smoke load-smoke tier-registry-gate obs-catalog-gate

check: fmt vet build test race obs-smoke trace-smoke serve-smoke sweep-smoke calib-smoke load-smoke tier-registry-gate obs-catalog-gate

# gofmt cleanliness gate: fails listing the offending files.
fmt:
	@files="$$(gofmt -l .)"; if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

# MVM pipeline benchmarks: serial vs parallel wall-clock, the
# allocs/op contract (ideal steady state must report 0 allocs/op), and
# the circuit cold/seeded/warm start comparison. benchjson tees the
# table to stdout and writes $(BENCH_OUT); override BENCH_OUT to keep
# older trajectory files.
BENCH_OUT ?= BENCH_PR10.json

bench:
	$(GO) test -run NONE -bench 'BenchmarkMVM' -benchmem . \
		| $(GO) run ./scripts/benchjson -out $(BENCH_OUT)

# End-to-end metrics gate: run a tiny funcsim-run with -metrics-addr,
# the fidelity probe, and trace export, scrape the endpoint, and assert
# the JSON snapshot holds live solver, tile, and probe-divergence
# histograms plus a valid Chrome trace file.
obs-smoke:
	$(GO) run ./scripts/obssmoke

# End-to-end trace gate: a short probed funcsim-run emits a Chrome
# trace file, which tracecheck validates (parses, >= 1 event, sane
# fields).
trace-smoke:
	$(GO) run ./cmd/funcsim-run -mode ideal -size 8 -train 24 -test 6 \
		-epochs 1 -channels 4 -probe-rate 8 -trace-out trace_smoke.json
	$(GO) run ./scripts/tracecheck trace_smoke.json
	rm -f trace_smoke.json

# End-to-end overload gate: start geniex-serve with chaos injection,
# drive a loadgen burst past the faithful tier's sustainable rate, and
# assert zero 5xx plus nonzero serve.shed and serve.retry counters.
serve-smoke:
	$(GO) run ./scripts/servesmoke

# End-to-end crash-resume gate: run a tiny scenario grid, SIGKILL a
# second run mid-grid, resume it, and assert no cell ran twice and
# every result file is byte-identical to the uninterrupted run's.
sweep-smoke:
	$(GO) run ./scripts/sweepsmoke

# End-to-end online-calibration gate: a frozen and a calibrated GENIEx
# tier under concurrent MVM traffic; the calibrated tier's probe rRMSE
# must end >= 2x lower, with >= 1 hot-swap and zero failed MVMs.
calib-smoke:
	$(GO) run ./scripts/calibsmoke

# End-to-end per-tenant observability gate: geniex-serve with a
# circuit-backed ladder and an armed latency SLO under loadgen
# traffic; the served per-tenant histograms must agree with loadgen's
# client-side view, the Prometheus exposition must carry the
# per-tenant series and SLO burn-rate gauges, and /trace must export
# a parented span tree from a circuit solve up to a per-tenant
# serve.request root.
load-smoke:
	$(GO) run ./scripts/loadsmoke

# Every registered obs metric name must appear in the DESIGN.md §13
# catalog, so the catalog cannot silently rot.
obs-catalog-gate:
	$(GO) run ./scripts/obscatalog

# The model registry is the single source of truth for fidelity-tier
# names: no Go file may switch on tier-name strings (funcsim-run,
# geniex-serve, sweep and the examples all resolve through
# funcsim.ModelByName).
tier-registry-gate:
	@if grep -rn --include='*.go' -E 'case "(ideal|analytical|geniex|geniex-adaptive|circuit|fastcircuit)"' .; then \
		echo "tier-name string switch found; use funcsim.ModelByName"; exit 1; fi
